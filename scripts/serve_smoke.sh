#!/usr/bin/env bash
# serve_smoke.sh — CI smoke test for the rapserved daemon: start it, POST
# a batch twice (the second run must hit the result cache), round-trip a
# trace ID through X-Rap-Trace-Id, scrape /metrics (JSON and Prometheus
# text, linted by prom_lint.sh) and /healthz, then SIGTERM it and
# require a clean drain.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=$(mktemp -d)/rapserved
LOG=$(mktemp)
ADDR=127.0.0.1:18080

go build -o "$BIN" ./cmd/rapserved

"$BIN" -addr "$ADDR" >"$LOG" 2>&1 &
SRV=$!
trap 'kill -9 $SRV 2>/dev/null || true' EXIT

# Wait for the listener.
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
HEALTH=$(curl -sf "http://$ADDR/healthz")
echo "$HEALTH" | grep -q '"status": "ok"' || {
    echo "FAIL: daemon never became healthy"; cat "$LOG"; exit 1; }
echo "$HEALTH" | grep -q '"state": "ok"' || {
    echo "FAIL: healthz has no state field"; echo "$HEALTH"; exit 1; }
echo "$HEALTH" | grep -Eq '"uptime_ms": [0-9]+' || {
    echo "FAIL: healthz has no uptime"; echo "$HEALTH"; exit 1; }
echo "$HEALTH" | grep -q '"in_flight": 0' || {
    echo "FAIL: idle daemon reports in-flight jobs"; echo "$HEALTH"; exit 1; }

BATCH='{"jobs":[
  {"id":"ok",      "source":"int main() { print(40+2); return 0; }", "allocator":"rap", "k":5},
  {"id":"bad",     "source":"int main( {", "allocator":"rap", "k":5},
  {"id":"compare", "source":"int main() { print(40+2); return 0; }", "mode":"compare", "ks":[3,5]}
]}'

# First run computes; per-job statuses ride in a 200 body.
OUT=$(curl -sf -X POST "http://$ADDR/v1/batch" -d "$BATCH")
echo "$OUT" | grep -q '"id": "ok"'       || { echo "FAIL: ok job missing"; echo "$OUT"; exit 1; }
echo "$OUT" | grep -q '"status": "invalid"' || { echo "FAIL: bad job not invalid"; echo "$OUT"; exit 1; }
echo "$OUT" | grep -q '"measurements"'   || { echo "FAIL: compare job has no measurements"; echo "$OUT"; exit 1; }
if echo "$OUT" | grep -q '"cached": true'; then
    echo "FAIL: first batch reported a cache hit"; echo "$OUT"; exit 1
fi

# Second, identical run must be served from the cache.
OUT=$(curl -sf -X POST "http://$ADDR/v1/batch" -d "$BATCH")
echo "$OUT" | grep -q '"cached": true' || { echo "FAIL: resubmission missed the cache"; echo "$OUT"; exit 1; }

# A trace ID submitted in the header comes back in the header, the
# result body, and (as IDs seeded from it) the batch results.
HDRS=$(mktemp)
OUT=$(curl -sf -D "$HDRS" -X POST "http://$ADDR/v1/jobs" \
    -H 'X-Rap-Trace-Id: smoke-trace-7' \
    -d '{"source":"int main() { print(7); return 0; }", "allocator":"rap", "k":5}')
echo "$OUT" | grep -q '"id": "smoke-trace-7"' || {
    echo "FAIL: trace ID not echoed in result body"; echo "$OUT"; exit 1; }
grep -qi 'X-Rap-Trace-Id: smoke-trace-7' "$HDRS" || {
    echo "FAIL: trace ID not echoed in response header"; cat "$HDRS"; exit 1; }

# The hit is visible in /metrics (rap/metrics/v2: counters + gauges +
# latency histograms).
METRICS=$(curl -sf "http://$ADDR/metrics")
echo "$METRICS" | grep -q '"schema": "rap/metrics/v2"' || { echo "FAIL: bad metrics schema"; exit 1; }
echo "$METRICS" | grep -Eq '"serve\.cache\.hits": [1-9]' || {
    echo "FAIL: no cache hits in /metrics"; echo "$METRICS"; exit 1; }
echo "$METRICS" | grep -q '"serve.workers"' || {
    echo "FAIL: no worker gauge in /metrics"; echo "$METRICS"; exit 1; }
echo "$METRICS" | grep -q '"serve.job"' || {
    echo "FAIL: no serve.job latency histogram in /metrics"; echo "$METRICS"; exit 1; }

# The Prometheus rendering of the same snapshot passes the format lint
# and carries the per-endpoint and per-phase latency histograms.
PROM=$(mktemp)
curl -sf "http://$ADDR/metrics?format=prom" >"$PROM"
./scripts/prom_lint.sh "$PROM" || { echo "FAIL: prom exposition does not lint"; cat "$PROM"; exit 1; }
for series in serve_jobs_ok_total serve_workers serve_job_ns_bucket serve_http_batch_ns_count rap_phase_color_ns_bucket; do
    grep -q "^$series" "$PROM" || {
        echo "FAIL: prom exposition missing $series"; cat "$PROM"; exit 1; }
done

# Graceful drain: SIGTERM, daemon exits 0 and logs a clean drain.
kill -TERM $SRV
for _ in $(seq 1 100); do
    kill -0 $SRV 2>/dev/null || break
    sleep 0.1
done
if kill -0 $SRV 2>/dev/null; then
    echo "FAIL: daemon still running 10s after SIGTERM"; cat "$LOG"; exit 1
fi
wait $SRV && RC=0 || RC=$?
[ "$RC" -eq 0 ] || { echo "FAIL: daemon exited $RC"; cat "$LOG"; exit 1; }
grep -q "drained cleanly" "$LOG" || { echo "FAIL: no clean-drain log line"; cat "$LOG"; exit 1; }
trap - EXIT

echo "PASS: serve smoke (batch, cache hit, trace ID, metrics+prom, SIGTERM drain)"
