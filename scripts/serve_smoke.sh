#!/usr/bin/env bash
# serve_smoke.sh — CI smoke test for the rapserved daemon: start it, POST
# a batch twice (the second run must hit the result cache), scrape
# /metrics and /healthz, then SIGTERM it and require a clean drain.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=$(mktemp -d)/rapserved
LOG=$(mktemp)
ADDR=127.0.0.1:18080

go build -o "$BIN" ./cmd/rapserved

"$BIN" -addr "$ADDR" >"$LOG" 2>&1 &
SRV=$!
trap 'kill -9 $SRV 2>/dev/null || true' EXIT

# Wait for the listener.
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -sf "http://$ADDR/healthz" | grep -q '"status": "ok"' || {
    echo "FAIL: daemon never became healthy"; cat "$LOG"; exit 1; }

BATCH='{"jobs":[
  {"id":"ok",      "source":"int main() { print(40+2); return 0; }", "allocator":"rap", "k":5},
  {"id":"bad",     "source":"int main( {", "allocator":"rap", "k":5},
  {"id":"compare", "source":"int main() { print(40+2); return 0; }", "mode":"compare", "ks":[3,5]}
]}'

# First run computes; per-job statuses ride in a 200 body.
OUT=$(curl -sf -X POST "http://$ADDR/v1/batch" -d "$BATCH")
echo "$OUT" | grep -q '"id": "ok"'       || { echo "FAIL: ok job missing"; echo "$OUT"; exit 1; }
echo "$OUT" | grep -q '"status": "invalid"' || { echo "FAIL: bad job not invalid"; echo "$OUT"; exit 1; }
echo "$OUT" | grep -q '"measurements"'   || { echo "FAIL: compare job has no measurements"; echo "$OUT"; exit 1; }
if echo "$OUT" | grep -q '"cached": true'; then
    echo "FAIL: first batch reported a cache hit"; echo "$OUT"; exit 1
fi

# Second, identical run must be served from the cache.
OUT=$(curl -sf -X POST "http://$ADDR/v1/batch" -d "$BATCH")
echo "$OUT" | grep -q '"cached": true' || { echo "FAIL: resubmission missed the cache"; echo "$OUT"; exit 1; }

# The hit is visible in /metrics.
METRICS=$(curl -sf "http://$ADDR/metrics")
echo "$METRICS" | grep -q '"schema": "rap/metrics/v1"' || { echo "FAIL: bad metrics schema"; exit 1; }
echo "$METRICS" | grep -Eq '"serve\.cache\.hits": [1-9]' || {
    echo "FAIL: no cache hits in /metrics"; echo "$METRICS"; exit 1; }

# Graceful drain: SIGTERM, daemon exits 0 and logs a clean drain.
kill -TERM $SRV
for _ in $(seq 1 100); do
    kill -0 $SRV 2>/dev/null || break
    sleep 0.1
done
if kill -0 $SRV 2>/dev/null; then
    echo "FAIL: daemon still running 10s after SIGTERM"; cat "$LOG"; exit 1
fi
wait $SRV && RC=0 || RC=$?
[ "$RC" -eq 0 ] || { echo "FAIL: daemon exited $RC"; cat "$LOG"; exit 1; }
grep -q "drained cleanly" "$LOG" || { echo "FAIL: no clean-drain log line"; cat "$LOG"; exit 1; }
trap - EXIT

echo "PASS: serve smoke (batch, cache hit, metrics, SIGTERM drain)"
