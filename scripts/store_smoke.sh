#!/usr/bin/env bash
# store_smoke.sh — CI smoke test for restart persistence: start rapserved
# with -store-dir, submit a batch, SIGTERM it, start a fresh daemon over
# the same store, resubmit the identical batch, and require it to be
# served from the warm-started cache with identical results.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=$(mktemp -d)/rapserved
LOG=$(mktemp)
DIR=$(mktemp -d)
ADDR=127.0.0.1:18081

go build -o "$BIN" ./cmd/rapserved

start() {
    "$BIN" -addr "$ADDR" -store-dir "$DIR" >>"$LOG" 2>&1 &
    SRV=$!
    for _ in $(seq 1 50); do
        if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
        sleep 0.1
    done
    curl -sf "http://$ADDR/healthz" | grep -q '"status": "ok"' || {
        echo "FAIL: daemon never became healthy"; cat "$LOG"; exit 1; }
}

stop() {
    kill -TERM $SRV
    for _ in $(seq 1 100); do
        kill -0 $SRV 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 $SRV 2>/dev/null; then
        echo "FAIL: daemon still running 10s after SIGTERM"; cat "$LOG"; exit 1
    fi
    wait $SRV && RC=0 || RC=$?
    [ "$RC" -eq 0 ] || { echo "FAIL: daemon exited $RC"; cat "$LOG"; exit 1; }
}

BATCH='{"jobs":[
  {"id":"rap5", "source":"int main() { int i = 0; int t = 0; while (i < 9) { t = t + i; i = i + 1; } print(t); return 0; }", "allocator":"rap", "k":5, "verify":true},
  {"id":"rap3", "source":"int main() { int i = 0; int t = 0; while (i < 9) { t = t + i; i = i + 1; } print(t); return 0; }", "allocator":"rap", "k":3},
  {"id":"gra5", "source":"int main() { print(40+2); return 0; }", "allocator":"gra", "k":5}
]}'

trap 'kill -9 $SRV 2>/dev/null || true' EXIT

# First life: cold batch computes and persists.
start
FIRST=$(curl -sf -X POST "http://$ADDR/v1/batch" -d "$BATCH")
echo "$FIRST" | grep -q '"status": "ok"' || { echo "FAIL: first batch failed"; echo "$FIRST"; exit 1; }
if echo "$FIRST" | grep -q '"cached": true'; then
    echo "FAIL: cold batch reported a cache hit"; echo "$FIRST"; exit 1
fi
# The cold life's writes (results + region summaries) show under store.*.
METRICS=$(curl -sf "http://$ADDR/metrics")
echo "$METRICS" | grep -Eq '"store\.write": [1-9]' || {
    echo "FAIL: no store writes in cold life's /metrics"; echo "$METRICS"; exit 1; }
stop
[ -s "$DIR/artifacts.log" ] || { echo "FAIL: nothing persisted to $DIR"; exit 1; }

# Second life: fresh process, same store. The identical batch must be
# served entirely from the warm-started cache, with identical payloads.
start
SECOND=$(curl -sf -X POST "http://$ADDR/v1/batch" -d "$BATCH")
HITS=$(echo "$SECOND" | grep -c '"cached": true' || true)
[ "$HITS" -eq 3 ] || { echo "FAIL: $HITS/3 jobs cached after restart"; echo "$SECOND"; exit 1; }

# Results must be byte-identical modulo the cached/duration fields.
norm() { echo "$1" | grep -o '"ret": [0-9-]*\|"output": \[[^]]*\]\|"verified": true' | sort; }
[ "$(norm "$FIRST")" = "$(norm "$SECOND")" ] || {
    echo "FAIL: restart results differ"; diff <(norm "$FIRST") <(norm "$SECOND") || true; exit 1; }

# The warm start and the hits are visible in /metrics.
METRICS=$(curl -sf "http://$ADDR/metrics")
echo "$METRICS" | grep -Eq '"serve\.cache\.warm_loaded": [1-9]' || {
    echo "FAIL: no warm-loaded entries in /metrics"; echo "$METRICS"; exit 1; }
echo "$METRICS" | grep -Eq '"serve\.cache\.hits": [1-9]' || {
    echo "FAIL: no cache hits in /metrics"; echo "$METRICS"; exit 1; }

stop
trap - EXIT

echo "PASS: store smoke (persist, SIGTERM, restart, warm cache hit, identical results)"
